//! Metamorphic property suite for the baseline arena (proptest).
//!
//! Trait-level invariants that hold for *any* correct
//! [`RoutingAlgorithm`], checked for both baselines across seeded
//! generator families:
//!
//! * **Vertex-relabeling equivariance.** Routing a relabeled graph and
//!   instance yields the relabeled result:
//!   `route(σG, σ·inst) ≡ σ·route(G, inst)` — compared on final
//!   positions and on the undelivered index set. (Congestion and
//!   rounds may legitimately differ: both baselines break ties on
//!   vertex ids and edge-list order, which σ permutes. Deliverability
//!   is pure connectivity, and final positions are determined by the
//!   delivery set — those must be exactly equivariant.)
//! * **Demand-subset monotonicity.** Dropping tokens never increases
//!   any per-edge load: exact for *arbitrary* subsets under
//!   [`GreedyLocalRouting`] (its per-token paths are oblivious — fixed
//!   by `(src, dst)` alone — so loads are additive), and exact for
//!   *prefix* subsets under [`SplicerRouting`] (an online algorithm:
//!   the first `k` tokens see identical load states, so the sub-run
//!   replays the full run's prefix decisions verbatim).
//!
//! Pinned case seeds live in `proptest-regressions/<test_name>.txt`
//! and run before the fresh cases on every invocation.

use expander_baselines::{GreedyLocalRouting, SplicerRouting};
use expander_core::arena::RoutingAlgorithm;
use expander_core::RoutingInstance;
use expander_graphs::{generators, Graph, VertexId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A small seeded zoo member per case: expanders, clique rings,
/// disconnected pieces, and power-law tails all get coverage.
fn graph_for(kind: usize, size: usize, seed: u64) -> Graph {
    match kind % 4 {
        0 => generators::random_regular(64 + size % 64, 4, seed)
            .unwrap_or_else(|_| generators::ring(64)),
        1 => generators::ring_of_cliques(3 + size % 4, 5 + size % 5),
        2 => generators::disconnected_expanders(2, 32 + size % 16, 4, seed).expect("generator"),
        _ => generators::power_law(48 + size % 48, 3, seed).expect("generator"),
    }
}

/// A seeded permutation σ of the vertex set.
fn sigma(n: usize, seed: u64) -> Vec<VertexId> {
    let mut s: Vec<VertexId> = (0..n as VertexId).collect();
    s.shuffle(&mut StdRng::seed_from_u64(seed));
    s
}

/// `σG`: the same multigraph with every endpoint relabeled. The CSR
/// insertion order changes with the labels — intentionally so; the
/// properties below must hold regardless.
fn relabel_graph(g: &Graph, s: &[VertexId]) -> Graph {
    let edges: Vec<(VertexId, VertexId)> =
        g.edges().map(|(u, v)| (s[u as usize], s[v as usize])).collect();
    Graph::from_edges(g.n(), &edges)
}

/// `σ·inst`: endpoints relabeled, token order and payloads untouched.
fn relabel_instance(inst: &RoutingInstance, s: &[VertexId]) -> RoutingInstance {
    let triples: Vec<(VertexId, VertexId, u64)> =
        inst.tokens.iter().map(|t| (s[t.src as usize], s[t.dst as usize], t.payload)).collect();
    RoutingInstance::from_triples(&triples)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// route(σG, σ·inst) ≡ σ·route(G, inst) for both baselines.
    #[test]
    fn baselines_are_relabeling_equivariant(
        kind in 0usize..4,
        size in 0usize..64,
        gseed in 0u64..1000,
        iseed in 0u64..1000,
        sseed in 0u64..1000,
    ) {
        let g = graph_for(kind, size, gseed);
        let n = g.n();
        let inst = RoutingInstance::permutation(n, iseed);
        let s = sigma(n, sseed);
        let g_r = relabel_graph(&g, &s);
        let inst_r = relabel_instance(&inst, &s);
        let algos: [&dyn RoutingAlgorithm; 2] = [&SplicerRouting::default(), &GreedyLocalRouting];
        for algo in algos {
            let out = algo.route_instance(&g, &inst).expect("valid");
            let out_r = algo.route_instance(&g_r, &inst_r).expect("valid");
            prop_assert!(out.verify(&inst).is_empty(), "{}: {:?}", algo.name(), out.verify(&inst));
            prop_assert!(out_r.verify(&inst_r).is_empty());
            prop_assert_eq!(
                &out_r.undelivered, &out.undelivered,
                "{}: undelivered set must be label-invariant", algo.name()
            );
            let mapped: Vec<VertexId> =
                out.positions.iter().map(|&p| s[p as usize]).collect();
            prop_assert_eq!(
                &out_r.positions, &mapped,
                "{}: positions must commute with σ", algo.name()
            );
        }
    }

    /// Dropping demand never adds load anywhere: arbitrary subsets for
    /// the oblivious local router, prefixes for the online splicer.
    #[test]
    fn baseline_congestion_is_subset_monotone(
        kind in 0usize..4,
        size in 0usize..64,
        gseed in 0u64..1000,
        iseed in 0u64..1000,
        mask in 0u64..u64::MAX,
    ) {
        let g = graph_for(kind, size, gseed);
        let n = g.n();
        let full = RoutingInstance::permutation(n, iseed);

        // Greedy local: any subset (keep token i iff bit i%64 of a
        // rotated mask — arbitrary but deterministic per case).
        let sub_tokens: Vec<_> = full
            .tokens
            .iter()
            .enumerate()
            .filter(|(i, _)| mask.rotate_left((*i % 61) as u32) & 1 == 1)
            .map(|(_, t)| *t)
            .collect();
        let sub = RoutingInstance { tokens: sub_tokens };
        let local = GreedyLocalRouting;
        let a = local.route_instance(&g, &full).expect("valid");
        let b = local.route_instance(&g, &sub).expect("valid");
        for (e, (&fl, &sl)) in a.edge_loads.iter().zip(&b.edge_loads).enumerate() {
            prop_assert!(sl <= fl, "local: edge {} load grew {} -> {} on a subset", e, fl, sl);
        }
        prop_assert!(b.max_congestion <= a.max_congestion);

        // Splicer: prefix subset — byte-exact replay of the full run's
        // first k decisions, so domination is exact per edge.
        let k = (mask % (full.tokens.len().max(1) as u64 + 1)) as usize;
        let prefix = RoutingInstance { tokens: full.tokens[..k].to_vec() };
        let splicer = SplicerRouting::default();
        let fa = splicer.route_instance(&g, &full).expect("valid");
        let fb = splicer.route_instance(&g, &prefix).expect("valid");
        for (e, (&fl, &sl)) in fa.edge_loads.iter().zip(&fb.edge_loads).enumerate() {
            prop_assert!(sl <= fl, "splicer: edge {} load grew {} -> {} on a prefix", e, fl, sl);
        }
        prop_assert!(fb.max_congestion <= fa.max_congestion);
        prop_assert!(fb.max_dilation <= fa.max_dilation);
    }
}

//! Property-based tests (proptest) over routing/sorting invariants.
//!
//! A single router is built once per process (preprocessing is the
//! expensive part) and arbitrary instances are thrown at it.

use expander_core::ops;
use expander_core::{
    Job, JobOutcome, QueryEngine, Router, RouterConfig, RoutingInstance, SortInstance,
};
use expander_graphs::{generators, Path, PathSet};
use proptest::prelude::*;
use std::sync::OnceLock;

const N: usize = 128;

fn shared_router() -> &'static Router {
    static ROUTER: OnceLock<Router> = OnceLock::new();
    ROUTER.get_or_init(|| {
        let g = generators::random_regular(N, 4, 77).expect("generator");
        Router::preprocess(&g, RouterConfig::for_epsilon(0.4)).expect("router")
    })
}

/// Shared routers for the fusion-equivalence property (one per size,
/// preprocessing amortized across all cases).
fn fusion_router(n: usize) -> &'static Router {
    static R64: OnceLock<Router> = OnceLock::new();
    static R256: OnceLock<Router> = OnceLock::new();
    let build = move || {
        let g = generators::random_regular(n, 4, 1234).expect("generator");
        Router::preprocess(&g, RouterConfig::for_epsilon(0.4)).expect("router")
    };
    match n {
        64 => R64.get_or_init(build),
        256 => R256.get_or_init(build),
        _ => unreachable!("unsupported fusion test size"),
    }
}

/// Every observable byte of one batch-job outcome.
fn outcome_fingerprint(out: &JobOutcome) -> String {
    match out {
        JobOutcome::Route(o) => format!("route|{:?}|{:?}|{}", o.positions, o.stats, o.ledger),
        JobOutcome::Sort(o) => format!("sort|{:?}|{:?}|{}", o.positions, o.stats, o.ledger),
    }
}

/// An arbitrary routing instance with load at most `max_l`.
fn routing_instance(max_l: usize) -> impl Strategy<Value = RoutingInstance> {
    proptest::collection::vec((0..N as u32, 0..N as u32), 0..(N * max_l / 2)).prop_map(
        move |mut pairs| {
            // Enforce the Task 1 load constraint by dropping overflow.
            let mut src = vec![0usize; N];
            let mut dst = vec![0usize; N];
            pairs.retain(|&(s, d)| {
                if src[s as usize] < max_l && dst[d as usize] < max_l {
                    src[s as usize] += 1;
                    dst[d as usize] += 1;
                    true
                } else {
                    false
                }
            });
            RoutingInstance::from_triples(
                &pairs.iter().map(|&(s, d)| (s, d, 0u64)).collect::<Vec<_>>(),
            )
        },
    )
}

fn sort_instance(max_l: usize) -> impl Strategy<Value = SortInstance> {
    proptest::collection::vec((0..N as u32, 0..50u64), 0..(N * max_l / 2)).prop_map(
        move |mut triples| {
            let mut src = vec![0usize; N];
            triples.retain(|&(s, _)| {
                if src[s as usize] < max_l {
                    src[s as usize] += 1;
                    true
                } else {
                    false
                }
            });
            SortInstance::from_triples(
                &triples.iter().map(|&(s, k)| (s, k, 0u64)).collect::<Vec<_>>(),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn routing_always_delivers(inst in routing_instance(3)) {
        let r = shared_router();
        let out = r.route(&inst).expect("valid instance");
        prop_assert!(out.all_delivered());
    }

    #[test]
    fn sorting_always_sorts(inst in sort_instance(3)) {
        let r = shared_router();
        let load = inst.load(N).max(1);
        let out = r.sort(&inst).expect("valid instance");
        prop_assert!(out.is_sorted(&inst, N, load));
    }

    #[test]
    fn ranking_is_order_isomorphic(inst in sort_instance(2)) {
        let r = shared_router();
        let out = ops::token_ranking(&QueryEngine::new(r), &inst).expect("valid");
        for (i, a) in inst.tokens.iter().enumerate() {
            for (j, b) in inst.tokens.iter().enumerate() {
                if a.key < b.key {
                    prop_assert!(out.values[i] < out.values[j]);
                } else if a.key == b.key {
                    prop_assert_eq!(out.values[i], out.values[j]);
                }
            }
        }
    }

    #[test]
    fn serialization_is_bijective_per_key(inst in sort_instance(2)) {
        let r = shared_router();
        let out = ops::local_serialization(&QueryEngine::new(r), &inst).expect("valid");
        let mut seen = std::collections::HashSet::new();
        let mut count = std::collections::HashMap::new();
        for t in &inst.tokens {
            *count.entry(t.key).or_insert(0u64) += 1;
        }
        for (i, t) in inst.tokens.iter().enumerate() {
            prop_assert!(out.values[i] < count[&t.key]);
            prop_assert!(seen.insert((t.key, out.values[i])));
        }
    }

    #[test]
    fn aggregation_matches_multiplicity(inst in sort_instance(2)) {
        let r = shared_router();
        let out = ops::local_aggregation(&QueryEngine::new(r), &inst).expect("valid");
        let mut count = std::collections::HashMap::new();
        for t in &inst.tokens {
            *count.entry(t.key).or_insert(0u64) += 1;
        }
        for (i, t) in inst.tokens.iter().enumerate() {
            prop_assert_eq!(out.values[i], count[&t.key]);
        }
    }

    #[test]
    fn fused_batches_match_per_job_path(
        n_pick in 0usize..2,
        shape in proptest::collection::vec((0u64..1_000_000, 0usize..3), 1..9),
        width_pick in 0usize..3,
    ) {
        // Cross-job dispersal fusion is an accelerator only: for random
        // mixed-density batches (dense permutations, sparse partial
        // permutations, sorts) the fused outcomes must be byte-identical
        // to the per-job baseline path at every fusion width.
        let n = [64usize, 256][n_pick];
        let r = fusion_router(n);
        let jobs: Vec<Job> = shape
            .iter()
            .map(|&(seed, kind)| match kind {
                0 => Job::Route(RoutingInstance::permutation(n, seed)),
                1 => Job::Route(RoutingInstance::partial_permutation(n, n / 4, seed)),
                _ => Job::Sort(SortInstance::random(n, 1 + (seed as usize % 2), seed)),
            })
            .collect();
        let b = jobs.len();
        let width = [1usize, 2, b][width_pick];
        let base = QueryEngine::new(r)
            .with_fusion_width(Some(1))
            .with_threads(Some(1))
            .run(&jobs)
            .expect("valid batch");
        let fused = QueryEngine::new(r)
            .with_fusion_width(Some(width))
            .with_threads(Some(1))
            .run(&jobs)
            .expect("valid batch");
        for (i, (a, b)) in base.outcomes.iter().zip(&fused.outcomes).enumerate() {
            prop_assert_eq!(
                outcome_fingerprint(a),
                outcome_fingerprint(b),
                "job {} differs at fusion width {}", i, width
            );
        }
        prop_assert_eq!(&base.stats.merged, &fused.stats.merged);
    }

    #[test]
    fn query_rounds_are_monotone_in_instance(inst in routing_instance(2)) {
        // Adding tokens never reduces charged rounds.
        let r = shared_router();
        if inst.tokens.len() < 2 {
            return Ok(());
        }
        let half = RoutingInstance {
            tokens: inst.tokens[..inst.tokens.len() / 2].to_vec(),
        };
        let full = r.route(&inst).expect("valid").rounds();
        let part = r.route(&half).expect("valid").rounds();
        // Not strictly monotone (dispersal rounding), but within slack.
        prop_assert!(part <= full + full / 2 + 1000,
            "half {part} vs full {full}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn path_set_quality_bounds(paths in proptest::collection::vec(
        proptest::collection::vec(0..64u32, 1..8), 0..12)) {
        // Quality = congestion + dilation; both bounded by total hops.
        let ps: PathSet = paths
            .into_iter()
            .map(|mut vs| {
                vs.dedup();
                Path::new(vs)
            })
            .collect();
        let c = ps.congestion();
        let d = ps.dilation();
        prop_assert!(c <= ps.total_hops().max(1));
        prop_assert!(d <= ps.total_hops().max(1));
        if ps.total_hops() == 0 {
            prop_assert_eq!(ps.quality(), 0);
        } else {
            prop_assert_eq!(ps.quality(), c + d);
        }
    }

    #[test]
    fn instance_load_is_max_of_src_dst(pairs in proptest::collection::vec(
        (0..32u32, 0..32u32), 0..64)) {
        let inst = RoutingInstance::from_triples(
            &pairs.iter().map(|&(s, d)| (s, d, 0u64)).collect::<Vec<_>>(),
        );
        let mut src = vec![0usize; 32];
        let mut dst = vec![0usize; 32];
        for &(s, d) in &pairs {
            src[s as usize] += 1;
            dst[d as usize] += 1;
        }
        let expect = src.iter().chain(dst.iter()).copied().max().unwrap_or(0);
        prop_assert_eq!(inst.load(32), expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn flat_move_cost_equals_hashmap_reference(walks in proptest::collection::vec(
        (0..N as u32, 0..N as u32, 0u64..4), 1..40)) {
        // The dense edge-id accumulator must charge exactly what the
        // HashMap reference charges, path for path, including the
        // times == 0 and zero-hop skips.
        use expander_core::exec::{FlatMoveCost, MoveCost};
        use expander_graphs::FlatPaths;
        let g = shared_router().graph();
        let paths: Vec<Path> = walks
            .iter()
            .map(|&(s, d, _)| Path::new(g.shortest_path(s, d).expect("connected")))
            .collect();
        let arena = FlatPaths::from_paths(g, paths.iter());
        let mut reference = MoveCost::new();
        let mut flat = FlatMoveCost::new(g.edge_id_count());
        for (i, (p, &(_, _, times))) in paths.iter().zip(&walks).enumerate() {
            reference.add(p, times);
            flat.add_flat(&arena, i, times);
        }
        prop_assert_eq!(flat.cost(), reference.cost());
        // A second accumulation after reset must match a fresh oracle.
        flat.reset();
        let mut fresh = MoveCost::new();
        for (i, p) in paths.iter().enumerate() {
            fresh.add(p, 2);
            flat.add_flat(&arena, i, 2);
        }
        prop_assert_eq!(flat.cost(), fresh.cost());
    }

    #[test]
    fn sparse_shuffler_mixing_matches_dense(
        t in 2usize..10,
        raw_rounds in proptest::collection::vec(
            proptest::collection::vec((0usize..16, 0usize..16), 1..6), 1..10)) {
        // The sparse in-place walk update and its incremental potential
        // must reproduce the dense O(t³) product and the re-summed
        // potential across a whole matching sequence.
        use expander_decomp::shuffler::{apply_fractional, apply_fractional_sparse, potential_of};
        let identity: Vec<Vec<f64>> = (0..t)
            .map(|a| (0..t).map(|b| f64::from(u8::from(a == b))).collect())
            .collect();
        let mut dense = identity.clone();
        let mut sparse = identity;
        let mut pot = potential_of(&dense);
        for round in &raw_rounds {
            let mut pairs: Vec<(usize, usize)> = round
                .iter()
                .map(|&(a, b)| (a % t, b % t))
                .filter(|&(a, b)| a != b)
                .map(|(a, b)| (a.min(b), a.max(b)))
                .collect();
            pairs.sort_unstable();
            pairs.dedup();
            if pairs.is_empty() {
                continue;
            }
            let x_val = 1.0 / (2.0 * t as f64);
            let entries: Vec<(usize, usize, f64)> =
                pairs.iter().map(|&(a, b)| (a, b, x_val)).collect();
            let mut x = vec![vec![0.0f64; t]; t];
            for &(a, b, v) in &entries {
                x[a][b] = v;
                x[b][a] = v;
            }
            dense = apply_fractional(&dense, &x);
            pot = apply_fractional_sparse(&mut sparse, &entries, pot);
            for (sr, dr) in sparse.iter().zip(&dense) {
                for (s, d) in sr.iter().zip(dr) {
                    prop_assert!((s - d).abs() <= 1e-9, "cell {s} vs {d}");
                }
            }
            let dense_pot = potential_of(&dense);
            prop_assert!(
                (pot - dense_pot).abs() <= 1e-9 * (1.0 + dense_pot),
                "potential {pot} vs {dense_pot}"
            );
        }
    }
}

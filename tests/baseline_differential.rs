//! Differential conformance suite for the baseline arena.
//!
//! Three routing algorithms built on entirely different mechanisms —
//! the hierarchical decomposition ([`RoutedDecomposition`]), splicer
//! spanning-tree routing ([`SplicerRouting`]), and greedy deterministic
//! local forwarding ([`GreedyLocalRouting`]) — route the *identical*
//! [`RoutingInstance`] on every zoo topology and must agree on the
//! shared contract:
//!
//! * every token is delivered or reported exactly once, and flat
//!   per-edge loads are consistent with the reported congestion
//!   ([`RouteOutcome::verify`]);
//! * deliverability is a graph property, not an algorithm property:
//!   both baselines fail exactly the cross-component tokens, and the
//!   decomposition router only ever fails a superset of those (it may
//!   additionally report cross-piece tokens within a component);
//! * outcomes are byte-identical across hierarchy build threads 1 vs 4
//!   and across repeated runs — full structural equality including the
//!   round ledger;
//! * on certified expanders (the decomposition's fast path) the
//!   hierarchical router's congestion beats or matches each baseline's
//!   up to a documented constant factor (the paper's quality claim).

use expander_baselines::{GreedyLocalRouting, SplicerRouting};
use expander_core::arena::{RouteOutcome, RoutingAlgorithm};
use expander_core::{DecomposedConfig, RoutedDecomposition, RoutingInstance};
use expander_graphs::{generators, ingest, metrics, Graph};

/// Same zoo shape as `tests/topology_zoo.rs`, sized for tier-1 budgets.
fn zoo() -> Vec<(&'static str, Graph)> {
    let parsed = {
        let text = ingest::graph_to_edge_list(&generators::ring_of_cliques(5, 9));
        ingest::parse_edge_list(&text).expect("round-trip parses").graph
    };
    vec![
        ("random-regular", generators::random_regular(128, 4, 42).expect("generator")),
        ("hypercube", generators::hypercube(7)),
        ("margulis", generators::margulis(11)),
        ("power-law", generators::power_law(128, 3, 7).expect("generator")),
        ("near-threshold", generators::bridged_expanders(64, 4, 2, 11).expect("generator")),
        ("disconnected", generators::disconnected_expanders(3, 64, 4, 17).expect("generator")),
        ("bridge-tree", generators::bridge_tree(7, 6)),
        ("ring-of-cliques", generators::ring_of_cliques(6, 10)),
        ("barbell", generators::barbell(48)),
        ("ring", generators::ring(96)),
        ("path", generators::path(64)),
        ("singleton", Graph::from_edges(1, &[])),
        ("empty", Graph::from_edges(0, &[])),
        ("isolated-vertices", Graph::from_edges(8, &[(0, 1), (2, 3)])),
        ("parsed-edge-list", parsed),
    ]
}

/// The standard arena workloads, guarded for degenerate sizes.
fn workloads(n: usize) -> Vec<(&'static str, RoutingInstance)> {
    let mut w = vec![("permutation", RoutingInstance::permutation(n, 99))];
    if n >= 4 {
        w.push(("partial", RoutingInstance::partial_permutation(n, n / 4, 101)));
        w.push(("hotspot", RoutingInstance::hotspot(n, 2, 3, 103)));
    }
    w
}

fn hierarchical(g: &Graph) -> RoutedDecomposition {
    RoutedDecomposition::preprocess(g, DecomposedConfig::for_epsilon(0.4))
}

/// Token indices whose endpoints lie in different connected components
/// — the ground truth for what *any* complete router can deliver.
fn cross_component(g: &Graph, inst: &RoutingInstance) -> Vec<usize> {
    let (comp, _) = g.components();
    inst.tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| comp[t.src as usize] != comp[t.dst as usize])
        .map(|(i, _)| i)
        .collect()
}

/// Every algorithm on every topology × workload: delivered-or-reported
/// exactly once, loads consistent with congestion, and the undelivered
/// sets relate exactly as connectivity dictates.
#[test]
fn zoo_differential_shared_invariants() {
    for (name, g) in zoo() {
        let rd = hierarchical(&g);
        let splicer = SplicerRouting::default();
        let local = GreedyLocalRouting;
        for (wname, inst) in workloads(g.n()) {
            let entrants: [&dyn RoutingAlgorithm; 3] = [&rd, &splicer, &local];
            let outs: Vec<RouteOutcome> = entrants
                .iter()
                .map(|a| {
                    a.route_instance(&g, &inst).unwrap_or_else(|e| {
                        panic!("{name}/{wname}/{}: instance rejected: {e}", a.name())
                    })
                })
                .collect();
            for (a, out) in entrants.iter().zip(&outs) {
                let issues = out.verify(&inst);
                assert!(
                    issues.is_empty(),
                    "{name}/{wname}/{}: conformance violations: {issues:?}",
                    a.name()
                );
            }
            // Baselines deliver iff the endpoints are connected; the
            // decomposition may additionally report cross-piece pairs.
            let unreachable = cross_component(&g, &inst);
            assert_eq!(outs[1].undelivered, unreachable, "{name}/{wname}: splicer reports");
            assert_eq!(outs[2].undelivered, unreachable, "{name}/{wname}: local reports");
            for &i in &unreachable {
                assert!(
                    outs[0].undelivered.contains(&i),
                    "{name}/{wname}: hierarchical delivered token {i} across components"
                );
            }
            // Where all three delivered everything, final positions are
            // the instance's destinations — one answer, three routes.
            if outs.iter().all(|o| o.fully_delivered()) {
                assert_eq!(outs[0].positions, outs[1].positions, "{name}/{wname}");
                assert_eq!(outs[1].positions, outs[2].positions, "{name}/{wname}");
            }
            // Rounds are charged whenever some token actually moved.
            for (a, out) in entrants.iter().zip(&outs) {
                let moved = inst
                    .tokens
                    .iter()
                    .enumerate()
                    .any(|(i, t)| t.src != t.dst && !out.undelivered.contains(&i));
                assert_eq!(
                    out.rounds() > 0,
                    moved,
                    "{name}/{wname}/{}: rounds {} vs moved {moved}",
                    a.name(),
                    out.rounds()
                );
            }
        }
    }
}

/// Byte-identical determinism through the arena trait: the
/// hierarchical adapter across build-thread counts, the baselines
/// across repeated runs. Equality is full structural equality of
/// [`RouteOutcome`], round ledger included.
#[test]
fn zoo_differential_outcomes_are_deterministic() {
    for (name, g) in zoo() {
        let mut seq_cfg = DecomposedConfig::for_epsilon(0.4);
        seq_cfg.router.hierarchy.threads = Some(1);
        let mut par_cfg = DecomposedConfig::for_epsilon(0.4);
        par_cfg.router.hierarchy.threads = Some(4);
        let seq = RoutedDecomposition::preprocess(&g, seq_cfg);
        let par = RoutedDecomposition::preprocess(&g, par_cfg);
        let splicer = SplicerRouting::default();
        let local = GreedyLocalRouting;
        for (wname, inst) in workloads(g.n()) {
            let a = seq.route_instance(&g, &inst).expect("valid");
            let b = par.route_instance(&g, &inst).expect("valid");
            assert_eq!(a, b, "{name}/{wname}: hierarchical outcome differs across threads");
            let s1 = splicer.route_instance(&g, &inst).expect("valid");
            let s2 = splicer.route_instance(&g, &inst).expect("valid");
            assert_eq!(s1, s2, "{name}/{wname}: splicer outcome differs across runs");
            let l1 = local.route_instance(&g, &inst).expect("valid");
            let l2 = local.route_instance(&g, &inst).expect("valid");
            assert_eq!(l1, l2, "{name}/{wname}: local outcome differs across runs");
        }
    }
}

/// The paper's quality claim as a checked bound: on every topology the
/// decomposition certifies as one expander (its fast path — Theorem 1.1
/// applies directly), hierarchical congestion beats or matches each
/// baseline's on the dense permutation workload, up to the documented
/// slack below; and on *every* workload it stays under a flat
/// `O(log n)` ceiling no baseline can promise.
///
/// Slack, documented: the hierarchical `max_congestion` aggregates
/// every measured movement leg (ingress, dispersal iterations, M* hops,
/// egress), while a baseline's is a single flat per-edge maximum, so
/// the head-to-head comparison carries a constant-factor accounting
/// asymmetry; a factor of 4 covers it on every certified topology
/// (measured at n = 121–128 permutations: hierarchical 12–14 vs.
/// greedy-local 4–14 and splicer 14–25; the worst ratio is 3.5 on the
/// high-degree margulis graph, where local forwarding spreads over 8
/// incident edges per vertex). The comparison is made on
/// the full permutation only — a dense Task 1 instance, the regime of
/// the paper's congestion claim. On sparse instances (partial/hotspot)
/// the baselines' loads can drop below the hierarchy's fixed dispersal
/// overhead, so the meaningful invariant there is the *shape*: the
/// hierarchical congestion is a workload-independent `O(log n)`
/// constant (Lemma 6.6's load bound), checked as `3·⌈log₂ n⌉`, while
/// tree-based baselines grow polynomially with n.
#[test]
fn hierarchical_congestion_competitive_on_certified_expanders() {
    const SLACK: u64 = 4;
    let mut certified = 0;
    for (name, g) in zoo() {
        let rd = hierarchical(&g);
        // "Certified expander" needs both halves: the decomposition's
        // fast path (one hierarchy covers the graph) *and* a spectral
        // certificate. The fast path alone is not enough — force-attach
        // absorbs low-conductance graphs like the ring structurally,
        // but Theorem 1.1's congestion bound is only claimed above the
        // expansion threshold.
        if rd.is_decomposed() || g.n() < 64 || metrics::spectral_gap(&g, 11) < 0.05 {
            continue;
        }
        certified += 1;
        let ceiling = 3 * (g.n() as f64).log2().ceil() as u64;
        let splicer = SplicerRouting::default();
        let local = GreedyLocalRouting;
        for (wname, inst) in workloads(g.n()) {
            let h = rd.route_instance(&g, &inst).expect("valid");
            assert!(h.fully_delivered(), "{name}/{wname}: fast path delivers everything");
            assert!(
                h.max_congestion <= ceiling,
                "{name}/{wname}: hierarchical congestion {} above the O(log n) ceiling {ceiling}",
                h.max_congestion
            );
            if wname != "permutation" {
                continue;
            }
            for b in [
                splicer.route_instance(&g, &inst).expect("valid"),
                local.route_instance(&g, &inst).expect("valid"),
            ] {
                assert!(
                    h.max_congestion <= SLACK * b.max_congestion.max(1),
                    "{name}/{wname}: hierarchical congestion {} vs baseline {} (slack {SLACK})",
                    h.max_congestion,
                    b.max_congestion
                );
            }
        }
    }
    assert!(certified >= 3, "zoo must contain several certified expanders, saw {certified}");
}

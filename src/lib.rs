#![warn(missing_docs)]

//! # Deterministic Expander Routing
//!
//! A from-scratch Rust reproduction of *Deterministic Expander Routing:
//! Faster and More Versatile* (Chang–Huang–Su, PODC 2024,
//! arXiv:2405.03908): a deterministic CONGEST-model routing engine for
//! expander graphs with a preprocessing/query tradeoff, plus every
//! substrate it stands on and the applications it enables.
//!
//! ## Layout
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`graphs`] | `expander-graphs` | graph types, expander generators, conductance/spectral metrics, paths, embeddings, the expander split `G⋄` |
//! | [`congest`] | `congest-sim` | CONGEST message-passing simulator, vertex programs, Fact 2.2 path scheduling, the round ledger |
//! | [`decomp`] | `expander-decomp` | cut-matching game, hierarchical decomposition (Property 3.1), shufflers (Definition 5.4) |
//! | [`core`] | `expander-core` | the router (Theorem 1.1), Tasks 1/2/3, expander sorting, routing⇄sorting equivalence (Appendix F), general-degree reduction (Appendix E), baselines |
//! | [`apps`] | `expander-apps` | MST (Corollary 1.3), k-clique enumeration (Corollary 1.4), data summarization |
//! | [`baselines`] | `expander-baselines` | rival routers for the baseline arena: splicer spanning-tree routing, greedy deterministic local routing |
//!
//! ## Quickstart
//!
//! ```
//! use expander_routing::prelude::*;
//!
//! // A 4-regular random expander on 256 vertices.
//! let g = generators::random_regular(256, 4, 7).expect("generator");
//!
//! // Preprocess once (Theorem 1.1's n^{O(ε)} phase)…
//! let router = Router::preprocess(&g, RouterConfig::for_epsilon(0.4)).expect("expander");
//!
//! // …then answer routing queries in polylog^{O(1/ε)} charged rounds.
//! let inst = RoutingInstance::permutation(g.n(), 42);
//! let outcome = router.route(&inst).expect("valid instance");
//! assert!(outcome.all_delivered());
//! println!("query rounds: {}", outcome.rounds());
//! ```

pub use congest_sim as congest;
pub use expander_apps as apps;
pub use expander_baselines as baselines;
pub use expander_core as core;
pub use expander_decomp as decomp;
pub use expander_graphs as graphs;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use expander_apps::{cliques, mst, summarize};
    pub use expander_baselines::{GreedyLocalRouting, SplicerRouting};
    pub use expander_core::{
        ArrivalSchedule, BatchOutcome, BatchStats, DecomposedConfig, GeneralRouter, Job,
        JobOutcome, JobRef, QueryEngine, RouteOutcome, RoutedDecomposition, Router, RouterConfig,
        RoutingAlgorithm, RoutingInstance, RoutingOutcome, RoutingService, ServiceConfig,
        ServiceStats, SortInstance, SortOutcome,
    };
    pub use expander_decomp::{Hierarchy, HierarchyParams};
    pub use expander_graphs::{generators, metrics, Graph};
}

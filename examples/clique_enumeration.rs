//! Deterministic k-clique enumeration (Corollary 1.4): edges shipped
//! to group-tuple owners through one routing query of load
//! `Õ(n^{1−2/k})`, listing verified against brute force.
//!
//! Run with: `cargo run --release --example clique_enumeration`

use expander_apps::cliques;
use expander_routing::prelude::*;

fn main() {
    println!(
        "{:>6} {:>3} {:>3} {:>10} {:>10} {:>10} {:>12}",
        "n", "d", "k", "cliques", "tokens", "max load", "rounds"
    );
    // Sparse graphs for triangles; denser ones so 4-cliques exist.
    for k in [3usize, 4] {
        let d = if k == 3 { 6 } else { 16 };
        for n in [128usize, 256, 512] {
            let g = generators::random_regular(n, d, 11).expect("generator");
            let router =
                Router::preprocess(&g, RouterConfig::for_epsilon(0.4)).expect("expander input");
            let engine = QueryEngine::new(&router);
            let out = cliques::enumerate_cliques(&engine, k).expect("valid instance");
            let reference = cliques::count_cliques_reference(&g, k);
            assert_eq!(out.count, reference, "clique count mismatch at n={n}, k={k}");
            println!(
                "{n:>6} {d:>3} {k:>3} {:>10} {:>10} {:>10} {:>12}",
                out.count, out.tokens, out.max_load, out.rounds
            );
        }
    }

    // The full general-graph pipeline (expander decomposition +
    // per-cluster routed listing + cut-edge pass).
    let g = generators::planted_partition(2, 128, 6, 2, 5).expect("generator");
    let out = cliques::enumerate_triangles_general(&g, 7).expect("valid instance");
    assert_eq!(out.count, cliques::count_cliques_reference(&g, 3));
    println!(
        "\ngeneral graph (2 planted communities): {} triangles across {} clusters \
         (cut fraction {:.3}), {} query rounds",
        out.count, out.clusters, out.cut_fraction, out.query_rounds
    );
    println!("\nall counts verified against brute force");
}

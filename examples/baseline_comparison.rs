//! Baseline arena report: the hierarchical router vs. the rival
//! algorithms of `expander-baselines`, across the topology zoo.
//!
//! ```sh
//! cargo run --release --example baseline_comparison            # n ≈ 256
//! BASELINE_COMPARISON_N=1024 cargo run --release --example baseline_comparison
//! ```
//!
//! Every topology is swept with the three standard workloads —
//! a full permutation, a partial permutation (`n/4` tokens), and a
//! hotspot pattern — through all three [`RoutingAlgorithm`] entrants:
//!
//! * `hierarchical` — [`RoutedDecomposition`] (Theorem 1.1 on certified
//!   expanders, Corollary 1.4 decomposition elsewhere),
//! * `splicer` — least-loaded paths in a union of seeded spanning
//!   trees (arXiv:0807.1496),
//! * `greedy-local` — deterministic local forwarding with unit-capacity
//!   links and waiting buffers (cf. arXiv:2403.07410).
//!
//! Per (topology, algorithm) the table shows worst congestion and
//! dilation over the workloads, total charged rounds on the shared
//! ledger model, overall delivery rate, and wall-clock for the three
//! routes (hierarchical preprocessing is listed separately in `pre`
//! — the other two have no preprocessed state). Every outcome is
//! checked with [`RouteOutcome::verify`]: a violation panics, so this
//! report doubles as a smoke-level conformance pass.

use expander_baselines::{GreedyLocalRouting, SplicerRouting};
use expander_core::arena::{RouteOutcome, RoutingAlgorithm};
use expander_core::{DecomposedConfig, RoutedDecomposition, RoutingInstance};
use expander_graphs::{generators, ingest, Graph};
use std::time::{Duration, Instant};

fn zoo(n: usize) -> Vec<(&'static str, Graph)> {
    let half = n / 2;
    let cliques = (n / 16).max(3);
    let mut z: Vec<(&'static str, Graph)> = vec![
        ("random-regular", generators::random_regular(n, 4, 42).expect("generator")),
        ("hypercube", generators::hypercube((n.max(16)).ilog2())),
        ("margulis", generators::margulis((n as f64).sqrt().round() as usize)),
        ("power-law", generators::power_law(n, 3, 7).expect("generator")),
        ("bridged-2", generators::bridged_expanders(half, 4, 2, 11).expect("generator")),
        ("disconnected", generators::disconnected_expanders(2, half, 4, 17).expect("generator")),
        ("bridge-tree", generators::bridge_tree(cliques, 8)),
        ("ring-of-cliques", generators::ring_of_cliques(cliques, 12)),
        ("barbell", generators::barbell(half)),
        ("ring", generators::ring(n)),
    ];
    let text = ingest::graph_to_edge_list(&generators::ring_of_cliques(4, 8));
    z.push(("parsed-edge-list", ingest::parse_edge_list(&text).expect("round-trip").graph));
    z
}

fn workloads(n: usize) -> Vec<RoutingInstance> {
    vec![
        RoutingInstance::permutation(n, 99),
        RoutingInstance::partial_permutation(n, n / 4, 101),
        RoutingInstance::hotspot(n, 4, 8, 103),
    ]
}

struct Line {
    cong: u64,
    dil: u64,
    rounds: u64,
    delivered: usize,
    tokens: usize,
    wall: Duration,
}

fn sweep(name: &str, algo: &dyn RoutingAlgorithm, g: &Graph, insts: &[RoutingInstance]) -> Line {
    let mut line =
        Line { cong: 0, dil: 0, rounds: 0, delivered: 0, tokens: 0, wall: Duration::ZERO };
    for inst in insts {
        let t0 = Instant::now();
        let out: RouteOutcome = algo.route_instance(g, inst).expect("valid instance");
        line.wall += t0.elapsed();
        let issues = out.verify(inst);
        assert!(issues.is_empty(), "{name}/{}: conformance violations: {issues:?}", algo.name());
        line.cong = line.cong.max(out.max_congestion);
        line.dil = line.dil.max(out.max_dilation);
        line.rounds += out.rounds();
        line.delivered += out.delivered_count();
        line.tokens += inst.tokens.len();
    }
    line
}

fn main() {
    let n: usize = std::env::var("BASELINE_COMPARISON_N")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(256);
    println!("baseline arena: base n = {n}, workloads = permutation + partial(n/4) + hotspot");
    println!(
        "{:<16} {:>6} {:>7}  {:<13} {:>7} {:>6} {:>11} {:>10} {:>10} {:>10}",
        "topology", "n", "m", "algorithm", "cong", "dil", "rounds", "delivered", "wall", "pre"
    );
    for (name, g) in zoo(n) {
        let insts = workloads(g.n());
        let t0 = Instant::now();
        let rd = RoutedDecomposition::preprocess(&g, DecomposedConfig::default());
        let pre = t0.elapsed();
        let splicer = SplicerRouting::default();
        let local = GreedyLocalRouting;
        let entrants: [(&dyn RoutingAlgorithm, Option<Duration>); 3] =
            [(&rd, Some(pre)), (&splicer, None), (&local, None)];
        for (row, (algo, pre)) in entrants.iter().enumerate() {
            let line = sweep(name, *algo, &g, &insts);
            let label = if row == 0 { name } else { "" };
            let (topo_n, topo_m) = if row == 0 {
                (g.n().to_string(), g.m().to_string())
            } else {
                (String::new(), String::new())
            };
            println!(
                "{:<16} {:>6} {:>7}  {:<13} {:>7} {:>6} {:>11} {:>9.1}% {:>10.1?} {:>10}",
                label,
                topo_n,
                topo_m,
                algo.name(),
                line.cong,
                line.dil,
                line.rounds,
                line.delivered as f64 / line.tokens.max(1) as f64 * 100.0,
                line.wall,
                pre.map(|d| format!("{d:.1?}")).unwrap_or_else(|| "-".to_owned()),
            );
        }
    }
}

//! The sorting/summarization toolbox: expander sorting, token ranking,
//! serialization, aggregation, top-k heavy hitters, and the Appendix F
//! equivalence reductions, all on one graph.
//!
//! Run with: `cargo run --release --example sorting_pipeline`

use expander_core::equivalence::{route_via_sorting, sort_via_routing};
use expander_core::ops;
use expander_routing::prelude::*;

fn main() {
    let n = 512;
    let g = generators::random_regular(n, 4, 5).expect("generator");
    let router = Router::preprocess(&g, RouterConfig::for_epsilon(0.4)).expect("expander input");

    // Expander sorting (Theorem 5.6).
    let inst = SortInstance::random(n, 2, 7);
    let sorted = router.sort(&inst).expect("valid instance");
    assert!(sorted.is_sorted(&inst, n, 2));
    println!("native expander sort:    {:>12} rounds", sorted.rounds());

    // Token-level primitives (Theorem 5.7, Corollaries 5.9/5.10),
    // pooled through one batch engine.
    let engine = QueryEngine::new(&router);
    let rank = ops::token_ranking(&engine, &inst).expect("valid");
    let serial = ops::local_serialization(&engine, &inst).expect("valid");
    let agg = ops::local_aggregation(&engine, &inst).expect("valid");
    println!("token ranking:           {:>12} rounds", rank.rounds);
    println!("local serialization:     {:>12} rounds", serial.rounds);
    println!("local aggregation:       {:>12} rounds", agg.rounds);

    // Heavy hitters via the toolbox.
    let skewed: Vec<(u32, u64, u64)> =
        (0..n as u32).map(|v| (v, if v % 3 == 0 { 99 } else { v as u64 }, 0)).collect();
    let heavy =
        summarize::top_k_frequent(&engine, &SortInstance::from_triples(&skewed), 1).expect("valid");
    println!(
        "top-1 frequent item:     key {} with count {} ({} rounds)",
        heavy.items[0].0, heavy.items[0].1, heavy.rounds
    );

    // Appendix F: the two reductions, with measured overheads.
    let small = SortInstance::random(128, 1, 9);
    let small_g = generators::random_regular(128, 4, 6).expect("generator");
    let small_router =
        Router::preprocess(&small_g, RouterConfig::for_epsilon(0.4)).expect("expander input");
    let f1 = sort_via_routing(&small_router, &small).expect("valid");
    assert!(f1.outcome.is_sorted(&small, 128, 1));
    println!(
        "\nLemma F.1 (sort via routing):  {} route calls, {} rounds",
        f1.route_calls,
        f1.outcome.rounds()
    );
    let perm = RoutingInstance::permutation(128, 11);
    let f2 = route_via_sorting(&small_router, &perm).expect("valid");
    assert!(f2.outcome.all_delivered());
    println!(
        "Lemma F.2 (route via sorting): {} sort calls,  {} rounds",
        f2.sort_calls,
        f2.outcome.rounds()
    );
}

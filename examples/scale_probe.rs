//! Scale probe: wall-clock of the staged parallel preprocessing
//! pipeline at a configurable size.
//!
//! ```sh
//! cargo run --release --example scale_probe                  # n = 2048
//! SCALE_PROBE_N=65536 cargo run --release --example scale_probe
//! EXPANDER_BUILD_THREADS=8 SCALE_PROBE_N=65536 \
//!     cargo run --release --example scale_probe
//! ```
//!
//! Prints per-stage timings (hierarchy, full preprocess, one
//! permutation query) plus the charged-round totals, so thread-count
//! scaling and the ROADMAP's 10⁵-vertex goal can be checked from one
//! command.

use expander_core::{QueryEngine, Router, RouterConfig, RoutingInstance};
use expander_decomp::{Hierarchy, HierarchyParams};
use expander_graphs::generators;
use std::time::Instant;

fn main() {
    let n: usize =
        std::env::var("SCALE_PROBE_N").ok().and_then(|s| s.trim().parse().ok()).unwrap_or(2048);
    let threads = congest_sim::parallel::build_threads(None);
    println!("scale probe: n = {n}, build threads = {threads}");

    let t0 = Instant::now();
    let g = generators::random_regular(n, 4, 42).expect("generator");
    println!("generate 4-regular expander: {:.2?}", t0.elapsed());

    let t1 = Instant::now();
    let h = Hierarchy::build(&g, HierarchyParams::for_epsilon(0.4)).expect("hierarchy");
    println!(
        "Hierarchy::build: {:.2?}  ({} nodes, depth {}, {} charged rounds)",
        t1.elapsed(),
        h.nodes().len(),
        h.depth(),
        h.ledger().total()
    );

    let t2 = Instant::now();
    let router = Router::preprocess(&g, RouterConfig::for_epsilon(0.4)).expect("router");
    println!(
        "Router::preprocess: {:.2?}  ({} charged rounds)",
        t2.elapsed(),
        router.preprocessing_ledger().total()
    );

    let inst = RoutingInstance::permutation(n, 7);
    let t3 = Instant::now();
    let out = router.route(&inst).expect("valid instance");
    assert!(out.all_delivered(), "undelivered tokens");
    println!(
        "route permutation (L = 1): {:.2?}  ({} charged rounds)",
        t3.elapsed(),
        out.ledger.total()
    );

    // Batch-engine throughput, so sweeps track the amortized query
    // path alongside the single-query wall time — fused (the default
    // cross-job dispersal fusion) against the per-job baseline path.
    let b = 8usize;
    let batch: Vec<RoutingInstance> =
        (0..b as u64).map(|s| RoutingInstance::permutation(n, 100 + s)).collect();
    let perjob = QueryEngine::new(&router).with_fusion_width(Some(1));
    let t4 = Instant::now();
    let (outs_pj, _) = perjob.route_batch(&batch).expect("valid instances");
    let dt_pj = t4.elapsed();
    assert!(outs_pj.iter().all(|o| o.all_delivered()), "undelivered batch tokens");
    println!(
        "engine batch per-job (B = {b}, L = 1): {dt_pj:.2?}  ({:.1} queries/s)",
        b as f64 / dt_pj.as_secs_f64(),
    );
    let engine = QueryEngine::new(&router);
    let t5 = Instant::now();
    let (outs, stats) = engine.route_batch(&batch).expect("valid instances");
    let dt = t5.elapsed();
    assert!(outs.iter().all(|o| o.all_delivered()), "undelivered batch tokens");
    println!(
        "engine batch fused   (B = {b}, L = 1): {dt:.2?}  ({:.1} queries/s, {} total rounds, \
         {:.2}× per-job)",
        b as f64 / dt.as_secs_f64(),
        stats.total_rounds,
        dt_pj.as_secs_f64() / dt.as_secs_f64()
    );
}

//! Topology-zoo report: routes one permutation per zoo topology through
//! [`RoutedDecomposition`] and prints a per-topology table — pieces,
//! fallback reason, delivery rate, observed congestion/dilation, charged
//! rounds, wall-clock.
//!
//! ```sh
//! cargo run --release --example zoo_report              # n ≈ 256
//! ZOO_REPORT_N=1024 cargo run --release --example zoo_report
//! ```
//!
//! Every topology — expander or not, connected or not — must produce a
//! row, never a panic: expanders take the single-hierarchy fast path,
//! everything else decomposes into expander pieces with cross-piece
//! tokens reported as structured undeliverables.
//!
//! The `churn` column replays each topology through three rounds of 5%
//! random edge removal on a [`ChurnRouter`] (via the fault-injection
//! driver) and reports the post-churn delivery rate — the degradation
//! ladder keeps every one of those batches on the route-or-report
//! contract too.

use expander_core::churn::{ChurnConfig, ChurnDriver, ChurnParams, ChurnSchedule};
use expander_core::{DecomposedConfig, RoutedDecomposition, RoutingInstance};
use expander_graphs::{generators, ingest, Graph};
use std::time::Instant;

fn zoo(n: usize) -> Vec<(&'static str, Graph)> {
    let half = n / 2;
    let cliques = (n / 16).max(3);
    let mut z: Vec<(&'static str, Graph)> = vec![
        ("random-regular", generators::random_regular(n, 4, 42).expect("generator")),
        ("power-law", generators::power_law(n, 3, 7).expect("generator")),
        ("bridged-2", generators::bridged_expanders(half, 4, 2, 11).expect("generator")),
        ("bridged-wide", generators::bridged_expanders(half, 4, half / 2, 13).expect("generator")),
        ("disconnected", generators::disconnected_expanders(2, half, 4, 17).expect("generator")),
        ("bridge-tree", generators::bridge_tree(cliques, 8)),
        ("ring-of-cliques", generators::ring_of_cliques(cliques, 12)),
        ("barbell", generators::barbell(half)),
        ("ring", generators::ring(n)),
    ];
    // One graph arrives through the ingestion path, exactly as a
    // real-world snapshot would.
    let text = ingest::graph_to_edge_list(&generators::ring_of_cliques(4, 8));
    z.push(("parsed-edge-list", ingest::parse_edge_list(&text).expect("round-trip").graph));
    z
}

fn main() {
    let n: usize =
        std::env::var("ZOO_REPORT_N").ok().and_then(|s| s.trim().parse().ok()).unwrap_or(256);
    println!("topology zoo report: base n = {n}");
    println!(
        "{:<16} {:>6} {:>7} {:>6} {:<14} {:>9} {:>6} {:>6} {:>10} {:>9} {:>7}",
        "topology",
        "n",
        "m",
        "pieces",
        "fallback",
        "delivered",
        "cong",
        "dil",
        "rounds",
        "wall",
        "churn"
    );
    for (name, g) in zoo(n) {
        let t0 = Instant::now();
        let rd = RoutedDecomposition::preprocess(&g, DecomposedConfig::default());
        let inst = RoutingInstance::permutation(g.n(), 99);
        let out = rd.route(&inst).expect("valid instance");
        let wall = t0.elapsed();
        let issues = out.verify(&inst);
        assert!(issues.is_empty(), "{name}: conformance violations: {issues:?}");
        let fallback = match rd.fallback_reason() {
            None => "none".to_owned(),
            Some(r) => format!("{r:?}").split([' ', '(', '{']).next().unwrap_or("?").to_owned(),
        };
        // Post-churn delivery rate: 5% random edge removal per round,
        // three rounds, live query batches on the degradation ladder.
        let churn = ChurnDriver::run(
            &g,
            ChurnConfig::default(),
            ChurnParams {
                schedule: ChurnSchedule::RandomRemoval,
                rounds: 3,
                churn_rate: 0.05,
                batch: (g.n() / 8).max(8),
                seed: 99,
            },
        );
        println!(
            "{:<16} {:>6} {:>7} {:>6} {:<14} {:>8.1}% {:>6} {:>6} {:>10} {:>8.0?} {:>6.1}%",
            name,
            g.n(),
            g.m(),
            rd.pieces().len(),
            fallback,
            out.success_rate() * 100.0,
            out.stats.max_congestion,
            out.stats.max_dilation,
            out.rounds(),
            wall,
            churn.delivery_rate() * 100.0,
        );
    }
}

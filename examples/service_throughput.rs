//! Sustained streaming throughput: open-loop arrivals through
//! [`RoutingService`] versus the closed-batch fused ceiling of
//! [`QueryEngine::run`] on the same jobs.
//!
//! For each graph size the harness replays a fixed seeded
//! [`ArrivalSchedule`] twice — once in real time (arrivals spaced at
//! the offered rate; measures latency under load) and once saturated
//! (back-to-back submission; measures sustained queries/s) — and
//! prints sustained qps, group-formation and service-latency
//! percentiles, the fused-width histogram, and the ratio of the
//! saturated service to the closed batch, which holds every job up
//! front and is therefore the fusion-density ceiling.
//!
//! ```sh
//! cargo run --release --example service_throughput             # n = 512 and 4096
//! SERVICE_N=1024 cargo run --release --example service_throughput   # one size (CI smoke)
//! ```
//!
//! Streamed outcomes are checked byte-identical to the closed batch
//! before any figure is reported, and the harness asserts every
//! admitted job came back (zero lost outcomes) — the machine-checkable
//! delivery contract CI's service-smoke step leans on.

use expander_routing::prelude::*;
use std::time::{Duration, Instant};

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok().and_then(|s| s.trim().parse().ok())
}

/// One observable line per outcome, for the byte-identity check.
fn fingerprint(out: &JobOutcome) -> String {
    match out {
        JobOutcome::Route(o) => format!("route|{:?}|{:?}|{}", o.positions, o.stats, o.ledger),
        JobOutcome::Sort(o) => format!("sort|{:?}|{:?}|{}", o.positions, o.stats, o.ledger),
    }
}

fn run_size(n: usize, jobs: usize, tenants: usize) {
    println!("=== n = {n}, {jobs} jobs, {tenants} tenants ===");
    let g = generators::random_regular(n, 4, 7).expect("generator");
    let t0 = Instant::now();
    let router = Router::preprocess(&g, RouterConfig::for_epsilon(0.4)).expect("expander input");
    println!("Router::preprocess: {:.2?}", t0.elapsed());
    let engine = QueryEngine::new(&router);

    // Ceiling: the same jobs as one closed fused batch. Warm once so
    // the scratch pool and dummy caches are populated for every
    // contender alike.
    let schedule = ArrivalSchedule::permutations(n, jobs, tenants, 0.0, 9000 + n as u64);
    let batch_jobs = schedule.jobs();
    engine.run(&batch_jobs).expect("valid jobs");
    let t1 = Instant::now();
    let batch = engine.run(&batch_jobs).expect("valid jobs");
    let closed = t1.elapsed();
    let closed_qps = jobs as f64 / closed.as_secs_f64();
    println!("closed batch (fused ceiling): {closed:.2?}  ({closed_qps:.1} queries/s)");

    // Saturated service: arrivals offered back to back; sustained
    // throughput is bounded by admission + grouping overhead only.
    let config = ServiceConfig { tenants, ..ServiceConfig::default() };
    let (outs, stats) =
        RoutingService::serve(&engine, config.clone(), |handle| schedule.drive(handle, false));
    assert_eq!(outs.len(), jobs, "lost outcomes: {} of {jobs} delivered", outs.len());
    assert_eq!(stats.completed, jobs as u64, "service completed {} of {jobs}", stats.completed);
    for (i, (streamed, oracle)) in outs.iter().zip(&batch.outcomes).enumerate() {
        assert_eq!(
            fingerprint(streamed),
            fingerprint(oracle),
            "job {i}: streamed outcome diverged from the closed batch"
        );
    }
    let ratio = closed_qps / stats.queries_per_sec;
    println!(
        "service (saturated):          {:.2?}  ({:.1} queries/s, {ratio:.2}× off the ceiling)",
        stats.elapsed, stats.queries_per_sec
    );
    let [f50, f95, f99] = stats.formation_latency_us;
    let [s50, s95, s99] = stats.service_latency_us;
    println!("  group formation p50/p95/p99: {f50}/{f95}/{f99} µs");
    println!("  service latency p50/p95/p99: {s50}/{s95}/{s99} µs");
    println!("  groups: {}, width histogram: {:?}", stats.groups, stats.width_histogram);

    // Real-time open loop at ~70% of the saturated rate: latency when
    // the service has headroom.
    let rate = stats.queries_per_sec * 0.7;
    let open = ArrivalSchedule::permutations(n, jobs, tenants, rate, 9000 + n as u64);
    let (outs_rt, stats_rt) =
        RoutingService::serve(&engine, config, |handle| open.drive(handle, true));
    assert_eq!(outs_rt.len(), jobs, "lost outcomes in the real-time replay");
    assert_eq!(stats_rt.completed, jobs as u64);
    let [r50, r95, r99] = stats_rt.service_latency_us;
    println!(
        "service (open loop, {rate:.0} jobs/s offered): {:.1} queries/s, latency p50/p95/p99 {r50}/{r95}/{r99} µs",
        stats_rt.queries_per_sec
    );
    println!("outputs byte-identical to the closed batch; zero lost outcomes");
    println!();
}

fn main() {
    let tenants = env_usize("SERVICE_TENANTS").unwrap_or(4);
    match env_usize("SERVICE_N") {
        // CI smoke and ad-hoc single-size runs.
        Some(n) => run_size(n, env_usize("SERVICE_JOBS").unwrap_or(64), tenants),
        None => {
            run_size(512, 64, tenants);
            run_size(4096, 64, tenants);
        }
    }
    // Idle-trim probe: a service left quiescent after a burst gives the
    // pool its cap trim back (satellite for long-lived deployments).
    let g = generators::random_regular(512, 4, 7).expect("generator");
    let router = Router::preprocess(&g, RouterConfig::for_epsilon(0.4)).expect("expander input");
    let engine = QueryEngine::new(&router).with_scratch_cap(0);
    let config = ServiceConfig { trim_after: Duration::from_millis(2), ..ServiceConfig::default() };
    let (_, stats) = RoutingService::serve(&engine, config, |handle| {
        handle.submit(0, Job::Route(RoutingInstance::permutation(512, 1))).expect("admitted");
        let _ = handle.recv(0);
        std::thread::sleep(Duration::from_millis(20));
    });
    assert!(stats.trims >= 1, "idle service never trimmed: {stats:?}");
    println!("idle service trimmed pooled scratches {} time(s) under a 0-byte cap", stats.trims);
}

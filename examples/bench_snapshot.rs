//! Median-reporting bench snapshot for the engine hot path, with a
//! regression-check mode for CI.
//!
//! The criterion stand-in in `vendor/` reports min/mean/max per bench;
//! perf acceptance gates in this repo are phrased in **medians**, so
//! this tool times the key scenarios itself (fixed warmup + sample
//! counts, one process, one core) and writes a dated JSON snapshot:
//!
//! ```text
//! cargo run --release --example bench_snapshot            # writes BENCH_<date>.json
//! cargo run --release --example bench_snapshot -- --check # compare vs newest BENCH_*.json
//! ```
//!
//! Snapshot format (`BENCH_<iso-date>.json`, checked in at the repo
//! root; see README "Performance"): a `results` array of
//! `{name, min_ns, median_ns, mean_ns, max_ns}` objects plus the
//! sample/warmup counts that produced them. `--check` re-times the same
//! scenarios and exits non-zero if any median regresses past
//! `--threshold` (default 1.5×) against the newest checked-in snapshot
//! (or an explicit `--check <file>`); it never rewrites snapshots.
//!
//! Knobs: `BENCH_SNAPSHOT_SAMPLES` (default 9), `BENCH_SNAPSHOT_WARMUP`
//! (default 2).

use expander_routing::prelude::*;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// One timed scenario: fixed-count samples around a closure.
struct BenchResult {
    name: &'static str,
    min_ns: u64,
    median_ns: u64,
    mean_ns: u64,
    max_ns: u64,
}

fn time_bench(
    name: &'static str,
    samples: usize,
    warmup: usize,
    mut f: impl FnMut(),
) -> BenchResult {
    for _ in 0..warmup {
        f();
    }
    let mut ns: Vec<u64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let t0 = Instant::now();
        f();
        ns.push(t0.elapsed().as_nanos() as u64);
    }
    ns.sort_unstable();
    let median_ns = if ns.len() % 2 == 1 {
        ns[ns.len() / 2]
    } else {
        (ns[ns.len() / 2 - 1] + ns[ns.len() / 2]) / 2
    };
    let mean_ns = ns.iter().sum::<u64>() / ns.len() as u64;
    BenchResult { name, min_ns: ns[0], median_ns, mean_ns, max_ns: *ns.last().unwrap() }
}

/// The timed scenarios — kept in lockstep with the names in
/// `crates/bench/benches/engine.rs` so criterion runs and snapshots
/// describe the same work.
fn run_benches(samples: usize, warmup: usize) -> Vec<BenchResult> {
    let n = 512usize;
    let b = 64usize;
    let g = generators::random_regular(n, 4, 7).expect("generator");
    let r = Router::preprocess(&g, RouterConfig::for_epsilon(0.4)).expect("router");
    let dense: Vec<RoutingInstance> =
        (0..b as u64).map(|s| RoutingInstance::permutation(n, 100 + s)).collect();
    let sparse: Vec<RoutingInstance> =
        (0..b as u64).map(|s| RoutingInstance::partial_permutation(n, n / 4, 100 + s)).collect();

    let fused = QueryEngine::new(&r).with_fusion_width(Some(b));
    let perjob = QueryEngine::new(&r).with_fusion_width(Some(1));
    let auto = QueryEngine::new(&r);
    let solo_inst = RoutingInstance::permutation(n, 9);
    let splicer = SplicerRouting::default();

    vec![
        time_bench("engine_batch_n512_B64_fused64", samples, warmup, || {
            fused.route_batch(&dense).expect("valid");
        }),
        time_bench("engine_batch_n512_B64_perjob", samples, warmup, || {
            perjob.route_batch(&dense).expect("valid");
        }),
        time_bench("engine_batch_sparse_n512_B64", samples, warmup, || {
            auto.route_batch(&sparse).expect("valid");
        }),
        time_bench("sequential_route_n512_B64", samples, warmup, || {
            for inst in &dense {
                r.route(inst).expect("valid");
            }
        }),
        time_bench("route_query_n512", samples, warmup, || {
            r.route(&solo_inst).expect("valid");
        }),
        // Baseline arena rivals on the same dense permutation (see
        // crates/bench/benches/baselines.rs and the README comparison
        // table) — gated alongside the hierarchical hot path so a
        // baseline regression can't hide behind the engine numbers.
        time_bench("baseline_splicer_n512", samples, warmup, || {
            splicer.route_instance(&g, &solo_inst).expect("valid");
        }),
        time_bench("baseline_local_n512", samples, warmup, || {
            GreedyLocalRouting.route_instance(&g, &solo_inst).expect("valid");
        }),
        // Streaming service at saturation: a fixed seeded arrival
        // schedule driven back to back through RoutingService; the
        // median wall time of the whole replay is the (inverse)
        // sustained-throughput figure. Compare against
        // engine_batch_n512_B64_fused64 — the closed-batch ceiling on
        // the same job shape.
        time_bench("service_sustained_n512_B64", samples, warmup, || {
            let schedule = ArrivalSchedule::permutations(n, b, 4, 0.0, 900);
            let config = ServiceConfig {
                tenants: 4,
                quiescent_after: Duration::from_micros(50),
                ..ServiceConfig::default()
            };
            let (outs, _) = RoutingService::serve(&auto, config, |h| schedule.drive(h, false));
            assert_eq!(outs.len(), b, "service lost outcomes");
        }),
    ]
}

/// The n = 4096 pair behind the streaming acceptance gate: the closed
/// fused batch (the ceiling) and the saturated service on the same
/// seeded schedule. Checked-in snapshots record both medians, so the
/// service-to-ceiling ratio is auditable from the JSON alone.
fn run_benches_large(samples: usize, warmup: usize) -> Vec<BenchResult> {
    let n = 4096usize;
    let b = 64usize;
    let g = generators::random_regular(n, 4, 7).expect("generator");
    let r = Router::preprocess(&g, RouterConfig::for_epsilon(0.4)).expect("router");
    let engine = QueryEngine::new(&r);
    let schedule = ArrivalSchedule::permutations(n, b, 4, 0.0, 900);
    let jobs = schedule.jobs();

    let results = vec![
        time_bench("engine_batch_n4096_B64_fused", samples, warmup, || {
            engine.run(&jobs).expect("valid");
        }),
        time_bench("service_sustained_n4096_B64", samples, warmup, || {
            let config = ServiceConfig {
                tenants: 4,
                quiescent_after: Duration::from_micros(50),
                ..ServiceConfig::default()
            };
            let (outs, _) = RoutingService::serve(&engine, config, |h| schedule.drive(h, false));
            assert_eq!(outs.len(), b, "service lost outcomes");
        }),
    ];
    let ratio = results[1].median_ns as f64 / results[0].median_ns as f64;
    eprintln!("service/ceiling at n=4096: {ratio:.2}x (target <= 1.30x)");
    results
}

fn write_json(path: &str, results: &[BenchResult], samples: usize, warmup: usize, date: &str) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"bench-snapshot/1\",\n");
    out.push_str(&format!("  \"date\": \"{date}\",\n"));
    out.push_str(&format!("  \"samples\": {samples},\n"));
    out.push_str(&format!("  \"warmup\": {warmup},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"min_ns\": {},\n", r.min_ns));
        out.push_str(&format!("      \"median_ns\": {},\n", r.median_ns));
        out.push_str(&format!("      \"mean_ns\": {},\n", r.mean_ns));
        out.push_str(&format!("      \"max_ns\": {}\n", r.max_ns));
        out.push_str(if i + 1 == results.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write snapshot");
}

/// Minimal reader for the fixed format `write_json` emits: pairs up
/// `"name"` and `"median_ns"` lines. Not a general JSON parser — it
/// only ever reads files this tool wrote.
fn read_medians(path: &str) -> Vec<(String, u64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let mut out = Vec::new();
    let mut name: Option<String> = None;
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if let Some(rest) = line.strip_prefix("\"name\": \"") {
            name = rest.strip_suffix('"').map(str::to_string);
        } else if let Some(rest) = line.strip_prefix("\"median_ns\": ") {
            if let (Some(n), Ok(v)) = (name.take(), rest.parse::<u64>()) {
                out.push((n, v));
            }
        }
    }
    out
}

/// Newest checked-in snapshot by filename (ISO dates sort
/// lexicographically).
fn newest_snapshot() -> Option<String> {
    let mut names: Vec<String> = std::fs::read_dir(".")
        .ok()?
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|f| f.starts_with("BENCH_") && f.ends_with(".json"))
        .collect();
    names.sort();
    names.pop()
}

/// Days-since-epoch to civil (y, m, d) — Howard Hinnant's algorithm,
/// so the snapshot can self-date without a calendar dependency.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn today_iso() -> String {
    let secs = SystemTime::now().duration_since(UNIX_EPOCH).expect("clock").as_secs() as i64;
    let (y, m, d) = civil_from_days(secs.div_euclid(86_400));
    format!("{y:04}-{m:02}-{d:02}")
}

fn env_count(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let baseline_file = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .filter(|a| !a.starts_with("--"))
        .cloned();
    let threshold: f64 = args
        .iter()
        .position(|a| a == "--threshold")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.5);

    let samples = env_count("BENCH_SNAPSHOT_SAMPLES", 9);
    let warmup = env_count("BENCH_SNAPSHOT_WARMUP", 2);

    eprintln!("timing {samples} samples (+{warmup} warmup) per scenario...");
    let mut results = run_benches(samples, warmup);
    results.extend(run_benches_large(samples, warmup));
    println!(
        "{:36} {:>10} {:>10} {:>10} {:>10}",
        "bench", "min ms", "median ms", "mean ms", "max ms"
    );
    for r in &results {
        println!(
            "{:36} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            r.name,
            ms(r.min_ns),
            ms(r.median_ns),
            ms(r.mean_ns),
            ms(r.max_ns)
        );
    }

    if check {
        let baseline = baseline_file.or_else(newest_snapshot).unwrap_or_else(|| {
            eprintln!("no BENCH_*.json baseline found for --check");
            std::process::exit(2);
        });
        eprintln!("\nchecking medians against {baseline} (threshold {threshold}x)");
        let medians = read_medians(&baseline);
        if medians.is_empty() {
            eprintln!("baseline {baseline} holds no medians");
            std::process::exit(2);
        }
        let mut failed = false;
        for (name, base_ns) in &medians {
            let Some(cur) = results.iter().find(|r| r.name == name.as_str()) else {
                eprintln!("  {name}: missing from current run (skipped)");
                continue;
            };
            let ratio = cur.median_ns as f64 / *base_ns as f64;
            let verdict = if ratio > threshold { "REGRESSED" } else { "ok" };
            eprintln!(
                "  {name}: {:.3} ms vs baseline {:.3} ms ({ratio:.2}x) {verdict}",
                ms(cur.median_ns),
                ms(*base_ns)
            );
            failed |= ratio > threshold;
        }
        if failed {
            eprintln!("perf check FAILED: median regression past {threshold}x");
            std::process::exit(1);
        }
        eprintln!("perf check passed");
    } else {
        let path = format!("BENCH_{}.json", today_iso());
        write_json(&path, &results, samples, warmup, &today_iso());
        eprintln!("\nwrote {path}");
    }
}

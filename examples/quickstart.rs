//! Quickstart: preprocess an expander once, answer routing and sorting
//! queries, and inspect the charged round ledgers.
//!
//! Run with: `cargo run --release --example quickstart`

use expander_routing::prelude::*;

fn main() {
    // 1. An input expander: 4-regular random graph on 1024 vertices.
    let n = 1024;
    let g = generators::random_regular(n, 4, 7).expect("generator");
    println!(
        "graph: n = {}, m = {}, spectral gap = {:.4}",
        g.n(),
        g.m(),
        metrics::spectral_gap(&g, 1)
    );

    // 2. Preprocess (Theorem 1.1): hierarchy + shufflers + leaf
    //    networks + delegate chains.
    let router = Router::preprocess(&g, RouterConfig::for_epsilon(0.4)).expect("expander input");
    let pre = router.preprocessing_ledger();
    println!("\npreprocessing rounds: {}", pre.total());
    for (phase, rounds) in pre.breakdown() {
        println!("  {phase:32} {rounds}");
    }
    let h = router.hierarchy();
    println!(
        "hierarchy: {} nodes, depth {}, k = {}, rho_best = {:.2}, |W| = {}/{}",
        h.nodes().len(),
        h.depth(),
        h.k(),
        h.rho_best(),
        h.node(h.root()).vertices.len(),
        n
    );

    // 3. A routing query: a random permutation (load L = 1).
    let inst = RoutingInstance::permutation(n, 42);
    let out = router.route(&inst).expect("valid instance");
    assert!(out.all_delivered());
    println!("\nrouting query (permutation, L = 1): {} rounds", out.rounds());
    for (phase, rounds) in out.ledger.breakdown() {
        println!("  {phase:32} {rounds}");
    }
    println!(
        "  stats: task3 calls = {}, fallback tokens = {}, dispersion violations = {}/{}",
        out.stats.task3_calls,
        out.stats.fallback_tokens,
        out.stats.dispersion_violations,
        out.stats.dispersion_checked
    );

    // 4. More queries amortize the preprocessing — each reuses the
    //    same shufflers (the tradeoff CS20 could not achieve).
    let mut query_total = 0u64;
    for seed in 0..5 {
        let q = RoutingInstance::permutation(n, 100 + seed);
        query_total += router.route(&q).expect("valid").rounds();
    }
    println!(
        "\n5 more queries: avg {} rounds each (preprocessing was {})",
        query_total / 5,
        pre.total()
    );

    // 5. An expander-sorting query (Theorem 5.6).
    let sort_inst = SortInstance::random(n, 2, 9);
    let sorted = router.sort(&sort_inst).expect("valid instance");
    assert!(sorted.is_sorted(&sort_inst, n, 2));
    println!("\nsorting query (L = 2): {} rounds", sorted.rounds());
}

//! Batch-engine throughput: B routing queries through [`QueryEngine`]
//! versus the same B queries as sequential `Router::route` calls, with
//! queries/sec at 1 thread and at the environment's thread count —
//! plus the legacy per-job engine path (fusion width 1) so the
//! cross-job dispersal fusion win is visible against its own baseline.
//!
//! ```sh
//! cargo run --release --example batch_throughput            # n = 512, B = 64
//! BATCH_N=1024 BATCH_B=128 cargo run --release --example batch_throughput
//! ```
//!
//! The engine outputs are checked byte-identical to the sequential
//! ones before any timing is reported.

use expander_routing::prelude::*;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|s| s.trim().parse().ok()).unwrap_or(default)
}

fn run_shape(router: &Router, label: &str, insts: &[RoutingInstance], threads: usize) {
    let b = insts.len();
    // Baseline: B independent route calls, fresh scratch each.
    let t1 = Instant::now();
    let solo: Vec<RoutingOutcome> =
        insts.iter().map(|inst| router.route(inst).expect("valid instance")).collect();
    let seq = t1.elapsed();
    assert!(solo.iter().all(RoutingOutcome::all_delivered), "undelivered tokens");

    // Engine, one worker, per-job path: the pooled-scratch +
    // dummy-cache win alone (the pre-fusion engine).
    let engine_pj = QueryEngine::new(router).with_threads(Some(1)).with_fusion_width(Some(1));
    let t2 = Instant::now();
    let (outs_pj, _stats_pj) = engine_pj.route_batch(insts).expect("valid instances");
    let perjob = t2.elapsed();

    // Engine, one worker, fused: cross-job dispersal fusion on top.
    let engine1 = QueryEngine::new(router).with_threads(Some(1));
    let t2 = Instant::now();
    let (outs1, stats1) = engine1.route_batch(insts).expect("valid instances");
    let one = t2.elapsed();

    // Engine, environment thread count.
    let engine_n = QueryEngine::new(router);
    let t3 = Instant::now();
    let (outs_n, _stats_n) = engine_n.route_batch(insts).expect("valid instances");
    let many = t3.elapsed();

    for (((a, opj), o1), on) in solo.iter().zip(&outs_pj).zip(&outs1).zip(&outs_n) {
        assert_eq!(a.positions, opj.positions, "per-job engine diverged from sequential");
        assert_eq!(a.ledger, opj.ledger, "per-job engine ledger diverged");
        assert_eq!(a.positions, o1.positions, "engine(1) diverged from sequential");
        assert_eq!(a.ledger, o1.ledger, "engine(1) ledger diverged");
        assert_eq!(a.positions, on.positions, "engine(N) diverged from sequential");
        assert_eq!(a.ledger, on.ledger, "engine(N) ledger diverged");
    }

    let qps = |d: std::time::Duration| b as f64 / d.as_secs_f64();
    println!("--- {label} ---");
    println!("sequential Router::route ×{b}: {seq:.2?}  ({:.1} queries/s)", qps(seq));
    println!(
        "QueryEngine (per-job, 1 thr):  {perjob:.2?}  ({:.1} queries/s, {:.2}× sequential)",
        qps(perjob),
        seq.as_secs_f64() / perjob.as_secs_f64()
    );
    println!(
        "QueryEngine (fused, 1 thr):    {one:.2?}  ({:.1} queries/s, {:.2}× sequential)",
        qps(one),
        seq.as_secs_f64() / one.as_secs_f64()
    );
    println!(
        "QueryEngine (threads = {threads}):     {many:.2?}  ({:.1} queries/s, {:.2}× sequential)",
        qps(many),
        seq.as_secs_f64() / many.as_secs_f64()
    );
    println!(
        "batch: {} jobs, {} total rounds (max {} per job), worst congestion {}, dilation {}",
        stats1.jobs,
        stats1.total_rounds,
        stats1.max_rounds,
        stats1.max_congestion(),
        stats1.max_dilation()
    );
    println!("outputs byte-identical across sequential / per-job / fused / engine({threads})");
}

fn main() {
    let n = env_usize("BATCH_N", 512);
    let b = env_usize("BATCH_B", 64);
    let threads = expander_routing::congest::parallel::build_threads(None);
    println!("batch throughput: n = {n}, B = {b}, env threads = {threads}");

    let g = generators::random_regular(n, 4, 7).expect("generator");
    let t0 = Instant::now();
    let router = Router::preprocess(&g, RouterConfig::for_epsilon(0.4)).expect("expander input");
    println!("Router::preprocess: {:.2?}", t0.elapsed());

    // Full-density batch: whole-graph permutations — the worst case
    // for batching (maximal per-query real-token work).
    let full: Vec<RoutingInstance> =
        (0..b as u64).map(|s| RoutingInstance::permutation(n, 100 + s)).collect();
    run_shape(&router, "full permutations (L = 1, n tokens/query)", &full, threads);

    // Sparse batch: n/4-token partial permutations — the multi-tenant
    // traffic shape, where the cached dummy dispersal dominates.
    let sparse: Vec<RoutingInstance> =
        (0..b as u64).map(|s| RoutingInstance::partial_permutation(n, n / 4, 100 + s)).collect();
    run_shape(&router, "sparse partial permutations (L = 1, n/4 tokens/query)", &sparse, threads);
}

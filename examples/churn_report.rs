//! Fault-injection churn report: runs every seeded [`ChurnSchedule`]
//! at several churn rates against live query batches on a
//! [`ChurnRouter`], and prints per-run delivery rate, repair latency,
//! and congestion/dilation percentiles plus which degradation-ladder
//! rungs served the queries.
//!
//! ```sh
//! cargo run --release --example churn_report             # n = 1024
//! CHURN_REPORT_N=4096 cargo run --release --example churn_report
//! ```
//!
//! Every round of every run is checked against the route-or-report
//! contract (`DecomposedOutcome::verify`): tokens are delivered or
//! reported as structured undeliverables, never dropped, never a
//! panic — up to 10% of edges churned per round.

use expander_core::churn::{ChurnConfig, ChurnDriver, ChurnParams, ChurnSchedule};
use expander_graphs::generators;
use std::time::Instant;

fn main() {
    let n: usize =
        std::env::var("CHURN_REPORT_N").ok().and_then(|s| s.trim().parse().ok()).unwrap_or(1024);
    let rounds = 8;
    let batch = n / 8;
    println!("churn report: n = {n}, {rounds} rounds/run, batch = {batch} tokens");
    println!(
        "{:<16} {:>5} {:>9} {:>22} {:>13} {:>13} {:<28}",
        "schedule",
        "rate",
        "delivery",
        "repair p50/p95/p99",
        "cong p50/95/99",
        "dil p50/95/99",
        "modes"
    );
    for schedule in ChurnSchedule::ALL {
        for rate in [0.01, 0.05, 0.10] {
            let g = generators::random_regular(n, 4, 42).expect("generator");
            let t0 = Instant::now();
            let report = ChurnDriver::run(
                &g,
                ChurnConfig::for_epsilon(0.33),
                ChurnParams { schedule, rounds, churn_rate: rate, batch, seed: 0xC0FFEE },
            );
            let wall = t0.elapsed();
            let [r50, r95, r99] = report.repair_latency_percentiles_us();
            let [c50, c95, c99] = report.congestion_percentiles();
            let [d50, d95, d99] = report.dilation_percentiles();
            let modes = report
                .mode_counts()
                .into_iter()
                .map(|(m, c)| format!("{m}:{c}"))
                .collect::<Vec<_>>()
                .join(" ");
            println!(
                "{:<16} {:>4.0}% {:>8.1}% {:>18}us {:>13} {:>13} {:<28} ({wall:.0?})",
                report.params.schedule.to_string(),
                rate * 100.0,
                report.delivery_rate() * 100.0,
                format!("{r50}/{r95}/{r99}"),
                format!("{c50}/{c95}/{c99}"),
                format!("{d50}/{d95}/{d99}"),
                modes,
            );
        }
    }
}

//! Deterministic MST on an expander (Corollary 1.3): Borůvka phases
//! driven by the local-propagation primitive, verified against Kruskal.
//!
//! Run with: `cargo run --release --example mst_expander`

use expander_apps::mst;
use expander_routing::prelude::*;

fn main() {
    for n in [256usize, 512, 1024] {
        let g = generators::random_regular(n, 4, n as u64).expect("generator");
        let weights = generators::random_weights(&g, 3);
        let router =
            Router::preprocess(&g, RouterConfig::for_epsilon(0.4)).expect("expander input");
        let engine = QueryEngine::new(&router);

        let out = mst::minimum_spanning_tree(&engine, &weights).expect("valid instance");
        let reference = mst::kruskal_reference(n, &weights);
        assert_eq!(out.edges, reference, "distributed MST must equal Kruskal");

        println!(
            "n = {n:5}: MST of {} edges in {} Borůvka phases, {} charged rounds",
            out.edges.len(),
            out.phases,
            out.rounds
        );
    }
    println!("\nall MSTs verified against the centralized reference");
}

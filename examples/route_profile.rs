//! Phase-breakdown profile of a fused query batch: tokens moved,
//! buckets touched, and estimated bytes traversed per execution phase
//! (Task 2 / Task 3 prep / dispersal scans / merge).
//!
//! Run with: `cargo run --release --features profile --example route_profile`
//!
//! Without `--features profile` the counters compile to nothing and the
//! table prints all zeros (the example says so instead of guessing).

use expander_routing::core::{PhaseProfile, RouteProfile};
use expander_routing::prelude::*;

fn row(name: &str, p: &PhaseProfile, total_bytes: u64) {
    let share =
        if total_bytes == 0 { 0.0 } else { 100.0 * p.bytes_traversed as f64 / total_bytes as f64 };
    println!(
        "  {name:10} {:>14} {:>16} {:>16} {share:>7.1}%",
        p.tokens_moved, p.buckets_touched, p.bytes_traversed
    );
}

fn print_table(profile: &RouteProfile) {
    let total = profile.total();
    println!(
        "  {:10} {:>14} {:>16} {:>16} {:>8}",
        "phase", "tokens moved", "buckets touched", "bytes traversed", "bytes%"
    );
    row("task2", &profile.task2, total.bytes_traversed);
    row("task3", &profile.task3, total.bytes_traversed);
    row("disperse", &profile.disperse, total.bytes_traversed);
    row("merge", &profile.merge, total.bytes_traversed);
    row("TOTAL", &total, total.bytes_traversed);
}

fn main() {
    let n = 512;
    let batch = 64;
    let g = generators::random_regular(n, 4, 9).expect("generator");
    let router = Router::preprocess(&g, RouterConfig::for_epsilon(0.4)).expect("expander input");
    let engine = QueryEngine::new(&router).with_fusion_width(Some(batch));

    let jobs: Vec<Job> =
        (0..batch).map(|i| Job::Route(RoutingInstance::permutation(n, 1000 + i as u64))).collect();

    // Warm run fills the dummy cache and the scratch pool; the profiled
    // run then shows the steady-state traffic a served batch costs.
    engine.run(&jobs).expect("valid jobs");
    let out = engine.run(&jobs).expect("valid jobs");

    println!(
        "batch: {} jobs on n = {n} (fusion width {batch}), {} total charged rounds\n",
        out.stats.jobs, out.stats.total_rounds
    );
    if out.stats.profile.is_empty() {
        println!("profile counters are all zero — rebuild with `--features profile`:");
        println!("  cargo run --release --features profile --example route_profile");
        return;
    }
    println!("steady-state phase traffic (whole batch):");
    print_table(&out.stats.profile);
}

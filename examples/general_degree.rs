//! Routing on an expander with wildly varying degrees (Appendix E):
//! tokens travel through the constant-degree expander split `G⋄`, and
//! the unknown-load doubling trick finds the right cap automatically.
//!
//! Run with: `cargo run --release --example general_degree`

use expander_routing::prelude::*;

fn main() {
    // A hub expander: 4-regular base plus 3 high-degree hubs.
    let n = 256;
    let g = generators::hub_expander(n, 3, 13).expect("generator");
    let degrees: Vec<usize> = (0..n as u32).map(|v| g.degree(v)).collect();
    println!(
        "base graph: n = {n}, max degree = {}, min degree = {}",
        degrees.iter().max().unwrap(),
        degrees.iter().min().unwrap()
    );

    let router =
        GeneralRouter::preprocess(&g, RouterConfig::for_epsilon(0.4)).expect("expander input");
    println!(
        "expander split G⋄: {} port vertices, max degree {}",
        router.split().graph().n(),
        router.split().graph().max_degree()
    );

    // Each vertex may source/sink up to deg(v) tokens — hubs take many.
    let hub = (0..n as u32).max_by_key(|&v| g.degree(v)).expect("non-empty");
    let fan_in = (g.degree(hub) as u32).min(24);
    let triples: Vec<(u32, u32, u64)> =
        (0..fan_in).map(|i| ((hub + 1 + i * 7) % n as u32, hub, i as u64)).collect();
    let inst = RoutingInstance::from_triples(&triples);
    let out = router.route(&inst).expect("valid instance");
    assert!(out.all_delivered());
    println!(
        "\nrouted {fan_in} tokens into hub {hub} (deg {}): {} charged rounds",
        g.degree(hub),
        out.rounds()
    );

    // The doubling trick: the load is unknown up front; caps double
    // until the instance fits, failed attempts charged honestly.
    let (out2, attempts) = router.route_with_doubling(&inst).expect("valid instance");
    assert!(out2.all_delivered());
    println!(
        "doubling trick: {attempts} attempts, {} total rounds (waste: {})",
        out2.rounds(),
        out2.ledger.phase("query/general/doubling-waste")
    );
}
